"""Monte-Carlo execution: repeated dispersion runs with independent seeds.

The runner is the single entry point benches and examples use to estimate
``E[τ]``.  Repetitions receive independent child generators via
``SeedSequence.spawn`` (never a shared stream), so results are identical
across the three execution modes:

* **batched** (the default for every process at sufficient repetition
  counts) — all repetitions advance in lock-step through the drivers in
  :mod:`repro.core.batched` (synchronous processes) and
  :mod:`repro.core.batched_continuous` (tick-scheduled processes),
  amortising the per-round NumPy dispatch cost across the whole batch;
* **serial** — one repetition at a time through the classic drivers; the
  reference oracle the batched drivers are bit-identical to;
* **shared-memory fan-out** (``n_jobs > 1``) — the CSR arrays are
  exported once into ``multiprocessing.shared_memory`` and contiguous
  repetition *shards* run on a process pool, each shard through the
  batched drivers where profitable (see
  :mod:`repro.experiments.fanout`); batching × processes compose.
  Implicit families (:mod:`repro.graphs.implicit`) fan out as a tiny
  ``(family, params)`` descriptor instead of a memory segment.

Because the batched drivers replay the serial uniform streams double for
double and repetition ``r`` always consumes child ``r`` of one parent
``SeedSequence``, the estimates are *bit-identical* whichever mode runs —
dispatch is purely a performance decision (see ``_use_batched``).
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass
from time import perf_counter
from typing import Callable

import numpy as np

from repro.core.anytime import AdaptiveInfo, Precision, TauAccumulator
from repro.core.batched import batched_parallel_idla, batched_sequential_idla
from repro.core.batched_continuous import (
    batched_continuous_sequential_idla,
    batched_ctu_idla,
    batched_uniform_idla,
)
from repro.core.continuous import continuous_sequential_idla, ctu_idla
from repro.core.parallel import parallel_idla
from repro.core.results import DispersionResult
from repro.core.sequential import sequential_idla
from repro.core.stopping_rules import DelayedRule, HairRule, StoppingRule
from repro.core.uniform import uniform_idla
from repro.experiments.stats import SummaryStats, summarize
from repro.graphs.csr import Graph
from repro.utils.rng import as_seed_sequence, stable_seed
from repro.utils.validation import check_integer

__all__ = [
    "PROCESS_DRIVERS",
    "BATCHED_DRIVERS",
    "LAZY_PROCESSES",
    "driver_kwargs",
    "run_process",
    "DispersionEstimate",
    "estimate_dispersion",
]

#: Name -> driver mapping used throughout benches and examples.
PROCESS_DRIVERS: dict[str, Callable[..., DispersionResult]] = {
    "sequential": sequential_idla,
    "parallel": parallel_idla,
    "uniform": uniform_idla,
    "ctu": ctu_idla,
    "c-sequential": continuous_sequential_idla,
}

#: Name -> lock-step driver for processes with a batched implementation.
BATCHED_DRIVERS: dict[str, Callable[..., list[DispersionResult]]] = {
    "sequential": batched_sequential_idla,
    "parallel": batched_parallel_idla,
    "uniform": batched_uniform_idla,
    "ctu": batched_ctu_idla,
    "c-sequential": batched_continuous_sequential_idla,
}

#: Processes whose drivers accept ``lazy=True`` (the tick-scheduled
#: processes schedule one particle per tick and have no lazy variant).
#: The CLI validates ``--lazy`` against this before building a graph.
LAZY_PROCESSES = frozenset({"sequential", "parallel"})

#: Keyword arguments each batched driver understands; anything else (an
#: unknown kwarg, or an impure settling rule) routes the estimate through
#: the serial oracle.  ``record=True`` and ``faithful_r=True`` — the last
#: modes that used to force the serial fallback — now batch through the
#: chunked trajectory store of :mod:`repro.core.trajectory`.
_BATCHED_KWARGS = {
    "parallel": {
        "lazy",
        "record",
        "tie_break",
        "rule",
        "num_particles",
        "scalar_threshold",
        "max_rounds",
        "tail_threshold",
        "state_budget",
        "backend",
        "kernels",
    },
    "sequential": {
        "lazy",
        "record",
        "rule",
        "num_particles",
        "max_total_steps",
        "tail_threshold",
        "state_budget",
        "backend",
        "kernels",
    },
    "uniform": {
        "record",
        "faithful_r",
        "num_particles",
        "max_ticks",
        "state_budget",
        "backend",
        "kernels",
    },
    "ctu": {"rate", "record", "num_particles", "state_budget", "backend", "kernels"},
    "c-sequential": {"rate", "record", "state_budget", "backend", "kernels"},
}

#: Batched-only performance knobs: understood by (some of) the lock-step
#: drivers but meaningless to the serial oracles, so the serial paths
#: strip them (for processes whose batched driver accepts them) instead
#: of crashing the fallback.  Pure performance knobs — stripping never
#: changes a sample.  ``state_budget`` qualifies because the serial
#: drivers are inherently one-repetition-resident: running them *is* the
#: tightest cohort a budget could ask for.  ``backend`` qualifies because
#: the serial drivers are the host-numpy reference oracles: every
#: registered exact-bitstream backend replays their streams double for
#: double, so the serial path *is* the backend-independent answer.
#: ``kernels`` qualifies for the same reason ``backend`` does: the
#: compiled providers are pinned bit-identical to the serial loops, so
#: the serial path already is the kernel-independent answer.
_BATCHED_ONLY_KWARGS = frozenset(
    {"tail_threshold", "state_budget", "backend", "kernels"}
)


def serial_kwargs(process: str, kwargs: dict) -> dict:
    """Driver kwargs for a serial run: drop batched-only perf knobs.

    Only knobs the process's batched driver actually understands are
    dropped — an unknown kwarg for this process still reaches the serial
    driver and raises there, exactly as before.
    """
    allowed = _BATCHED_KWARGS.get(process, frozenset())
    drop = _BATCHED_ONLY_KWARGS & allowed & set(kwargs)
    if not drop:
        return kwargs
    return {k: v for k, v in kwargs.items() if k not in drop}


_DRIVER_KWARGS_CACHE: dict[str, frozenset[str]] = {}


def driver_kwargs(process: str) -> frozenset[str]:
    """Every keyword ``estimate_dispersion`` accepts for one process.

    Derived from the registry, not hand-maintained: the keyword-only
    parameters of ``PROCESS_DRIVERS[process]``'s signature (minus
    ``seed``, which the runner owns) plus the process's batched-only
    performance knobs from ``_BATCHED_KWARGS``.  Registering a new
    driver or adding a driver parameter updates the accepted surface
    automatically.
    """
    cached = _DRIVER_KWARGS_CACHE.get(process)
    if cached is not None:
        return cached
    try:
        driver = PROCESS_DRIVERS[process]
    except KeyError:
        raise KeyError(
            f"unknown process {process!r}; available: {sorted(PROCESS_DRIVERS)}"
        ) from None
    params = inspect.signature(driver).parameters
    accepted = {
        name
        for name, p in params.items()
        if p.kind is inspect.Parameter.KEYWORD_ONLY and name != "seed"
    }
    accepted |= _BATCHED_KWARGS.get(process, set())
    result = frozenset(accepted)
    _DRIVER_KWARGS_CACHE[process] = result
    return result


def _validate_driver_kwargs(process: str, kwargs: dict) -> None:
    """Reject unknown driver kwargs up front, naming the accepted options.

    Unknown keys used to flow through ``**kwargs`` all the way into the
    driver (or silently force the serial fallback first); now they fail
    fast — before graph export, pool spawn or any repetition runs — with
    the process's actual option surface in the message.
    """
    unknown = sorted(set(kwargs) - driver_kwargs(process))
    if unknown:
        raise TypeError(
            f"unknown driver kwarg(s) {', '.join(map(repr, unknown))} for "
            f"process {process!r}; accepted options: "
            f"{', '.join(sorted(driver_kwargs(process)))}"
        )

#: Below these repetition counts the serial drivers' tuned scalar loops
#: win; at or above them lock-step batching amortises enough dispatch
#: overhead to pay off.  The tick-scheduled processes (uniform, ctu,
#: c-sequential) batch one walking particle per repetition, so their
#: crossovers sit far above parallel's repetitions × particles width.
_BATCHED_MIN_REPS = {
    "parallel": 4,
    "sequential": 64,
    "uniform": 16,
    "ctu": 16,
    "c-sequential": 64,
}

#: Settling-rule types known to be pure (stateless) predicates.  The
#: batched drivers evaluate rules on far fewer (particle, vertex) pairs
#: than the serial ones — identical outcomes only for pure rules — so
#: auto dispatch refuses to batch anything it cannot vouch for.
#: ``batched=True`` is the escape hatch: it trusts the caller's rule to
#: be pure (the batched drivers document that requirement).
_PURE_RULE_TYPES = (StoppingRule, HairRule, DelayedRule)


def _validate_forced_batched(process: str, kwargs) -> None:
    """Raise if ``batched=True`` cannot be honoured for this request."""
    if process not in BATCHED_DRIVERS:
        raise ValueError(f"no batched driver for process {process!r}")
    if not set(kwargs) <= _BATCHED_KWARGS[process]:
        unsupported = sorted(set(kwargs) - _BATCHED_KWARGS[process])
        raise ValueError(
            f"kwargs {unsupported} not supported by the batched "
            f"{process} driver; pass batched=False"
        )


def _use_batched(process: str, g: Graph, reps: int, n_jobs: int, kwargs, batched):
    """Decide whether an in-process estimate runs through the lock-step drivers.

    Shard workers call this too (with their shard's repetition count and
    ``n_jobs=1``).  There is no memory criterion any more: the streaming
    uniform buffers of :mod:`repro.core.batched` bound their allocation
    by construction, so graph size and repetition count never disqualify
    batching.
    """
    if batched not in (True, False, "auto"):
        raise ValueError(f"batched must be True, False or 'auto', got {batched!r}")
    if batched is False or process not in BATCHED_DRIVERS:
        if batched is True:
            raise ValueError(f"no batched driver for process {process!r}")
        return False
    if batched is True:
        _validate_forced_batched(process, kwargs)
        return True
    # batched="auto": purely a performance heuristic — results are
    # bit-identical either way.  n_jobs > 1 is decided by the fan-out
    # path before this is consulted; here it only means "not in-process".
    if n_jobs != 1 or not set(kwargs) <= _BATCHED_KWARGS[process]:
        return False
    if reps < _BATCHED_MIN_REPS[process]:
        return False
    rule = kwargs.get("rule")
    if rule is not None and type(rule) not in _PURE_RULE_TYPES:
        return False
    return True


def run_process(
    process: str, g: Graph, origin: int = 0, seed=None, **kwargs
) -> DispersionResult:
    """Run a named process once (thin dispatcher over the drivers)."""
    try:
        driver = PROCESS_DRIVERS[process]
    except KeyError:
        raise KeyError(
            f"unknown process {process!r}; available: {sorted(PROCESS_DRIVERS)}"
        ) from None
    return driver(g, origin, seed=seed, **kwargs)


@dataclass(frozen=True)
class DispersionEstimate:
    """Samples + summary for one (graph, process, origin) configuration.

    ``trajectories`` (with ``record=True``) holds one ``list[list[int]]``
    per repetition — repetition ``r``'s per-particle vertex sequences,
    exactly ``run_process(..., record=True).trajectories`` — and
    ``schedules`` (Uniform-IDLA with ``faithful_r=True``) one realised
    schedule array per repetition.  Both are per-repetition lists in
    ``SeedSequence``-child order, identical across serial / batched /
    fan-out execution.

    ``adaptive`` (``precision=``-driven estimates only) records the
    rounds consumed, the achieved anytime half-width and what stopped
    the run — see :class:`repro.core.anytime.AdaptiveInfo`.
    """

    process: str
    graph_name: str
    n: int
    origin: int
    dispersion: SummaryStats
    total_steps: SummaryStats
    samples: np.ndarray
    total_samples: np.ndarray
    trajectories: list[list[list[int]]] | None = None
    schedules: list[np.ndarray] | None = None
    adaptive: AdaptiveInfo | None = None

    def format(self) -> str:
        line = (
            f"{self.process:>12} on {self.graph_name:<16} "
            f"E[τ] = {self.dispersion.format()}"
        )
        if self.adaptive is not None:
            line += f"\n{'':>12}    adaptive: {self.adaptive.format()}"
        return line


def outcome_of(res: DispersionResult) -> tuple[float, int, object, object]:
    """Per-repetition payload every execution mode returns to the runner.

    ``(dispersion_time, total_steps, trajectories, schedule)`` — the two
    trailing entries are ``None`` unless the run recorded them; shard
    workers ship the same shape back across the process boundary, so
    repetition payloads concatenate identically in every mode.
    """
    return (
        float(res.dispersion_time),
        int(res.total_steps),
        res.trajectories,
        getattr(res, "schedule", None),
    )


def _one_run(args) -> tuple[float, int, object, object]:
    process, g, origin, seed, kwargs = args
    res = run_process(process, g, origin, seed=seed, **kwargs)
    return outcome_of(res)


def _round_outcomes(
    g: Graph,
    process: str,
    origin: int,
    children,
    n_jobs: int,
    batched,
    kwargs: dict,
    max_shard: int | None = None,
) -> list[tuple[float, int, object, object]]:
    """Run one contiguous block of repetitions through the best dispatch.

    The single dispatch point both the fixed-``reps`` path and every
    adaptive round go through: fan-out when more than one worker is
    useful, else lock-step batching where profitable, else the serial
    oracle.  ``children`` are consecutive children of one parent
    ``SeedSequence``; since repetition ``r``'s stream depends only on
    child ``r`` (never on how the block is grouped), the outcomes are
    bit-identical whichever branch runs.  ``max_shard`` is the adaptive
    loop's cost-weighted shard ceiling (see ``estimate_dispersion``).

    With a ``state_budget`` that forces repetition cohorts, fan-out
    shards are additionally capped at a whole number of cohorts
    (:func:`repro.experiments.fanout.budget_aligned_shard`): each worker
    keeps at most one cohort of state resident, and no shard ends on a
    fractional cohort that would re-pay the cohort setup for a sliver of
    repetitions.  Purely a scheduling decision — shard boundaries never
    touch a sample.
    """
    reps = len(children)
    jobs = min(n_jobs, reps)
    if jobs > 1:
        from repro.experiments.fanout import budget_aligned_shard, fanout_estimate

        budget = kwargs.get("state_budget")
        if budget is not None:
            from repro.core.budget import plan_state

            mm = kwargs.get("num_particles")
            plan = plan_state(
                budget, process, g.n, g.n if mm is None else int(mm)
            )
            if plan.cohort_reps < reps:
                max_shard = budget_aligned_shard(
                    reps, jobs, plan.cohort_reps, max_shard=max_shard
                )
        return fanout_estimate(
            g,
            process,
            origin=origin,
            children=children,
            n_jobs=jobs,
            batched=batched,
            kwargs=kwargs,
            max_shard=max_shard,
        )
    if _use_batched(process, g, reps, jobs, kwargs, batched):
        batch = BATCHED_DRIVERS[process](g, origin, seeds=list(children), **kwargs)
        return [outcome_of(r) for r in batch]
    skwargs = serial_kwargs(process, kwargs)
    return [_one_run((process, g, origin, s, skwargs)) for s in children]


#: Wall-clock seconds one fan-out shard should cost in later adaptive
#: rounds.  Once a round has measured the per-repetition cost, shards are
#: capped near this duration so a straggling worker can delay the round
#: by about one shard, not by a whole ``reps / n_jobs`` slice; the
#: surplus shards queue on the pool and drain as workers free up.
_TARGET_SHARD_SECONDS = 0.5


def _adaptive_outcomes(
    g: Graph,
    process: str,
    origin: int,
    parent,
    precision: Precision,
    n_jobs: int,
    batched,
    kwargs: dict,
) -> tuple[list[tuple[float, int, object, object]], AdaptiveInfo]:
    """Run repetition rounds until the anytime CI meets ``precision``.

    Every round spawns the *next* children of ``parent``
    (``SeedSequence.spawn`` advances the parent's counter, so round
    boundaries are invisible in the streams: the concatenated outcomes
    are bit-identical to one fixed run of the same total repetition
    count).  After each round the anytime confidence-sequence width is
    checked — valid under exactly this kind of optional stopping — and
    the next round is sized from the width still missing, capped by
    ``precision.growth`` and ``precision.max_reps``.
    """
    acc = TauAccumulator()
    outcomes: list[tuple[float, int, object, object]] = []
    rounds: list[int] = []
    t0 = perf_counter()
    halfwidth = math.inf
    target_hw = math.inf
    stopped_by = "max_reps"
    while True:
        consumed = len(outcomes)
        if consumed == 0:
            round_reps = precision.initial
            max_shard = None
        else:
            ratio = halfwidth / target_hw if target_hw > 0.0 else math.inf
            if math.isfinite(ratio):
                # hw shrinks ~ 1/sqrt(t): predict the total t that lands
                # on the target, then cap the round by the growth factor
                predicted_f = consumed * ratio * ratio
                predicted = (
                    math.ceil(predicted_f)
                    if math.isfinite(predicted_f)
                    else precision.max_reps
                )
            else:
                predicted = precision.max_reps
            ceiling = math.ceil(consumed * precision.growth)
            total_next = max(consumed + 1, min(predicted, ceiling))
            total_next = min(total_next, precision.max_reps)
            round_reps = total_next - consumed
            # cost-weighted shard sizing from the observed per-rep cost
            per_rep_s = (perf_counter() - t0) / consumed
            if n_jobs > 1 and per_rep_s > 0.0:
                max_shard = max(1, int(_TARGET_SHARD_SECONDS / per_rep_s))
            else:
                max_shard = None
        children = parent.spawn(round_reps)
        outcomes.extend(
            _round_outcomes(
                g, process, origin, children, n_jobs, batched, kwargs, max_shard
            )
        )
        acc.add([o[0] for o in outcomes[-round_reps:]])
        rounds.append(round_reps)
        halfwidth = acc.halfwidth(precision.level)
        target_hw = precision.target_halfwidth(acc.mean)
        if halfwidth <= target_hw:
            stopped_by = "target"
            break
        if len(outcomes) >= precision.max_reps:
            stopped_by = "max_reps"
            break
        if (
            precision.max_seconds is not None
            and perf_counter() - t0 >= precision.max_seconds
        ):
            stopped_by = "max_seconds"
            break
    info = AdaptiveInfo(
        target=precision,
        reps=len(outcomes),
        rounds=tuple(rounds),
        mean=acc.mean,
        halfwidth=halfwidth,
        target_halfwidth=target_hw,
        met=halfwidth <= target_hw,
        stopped_by=stopped_by,
        elapsed_s=perf_counter() - t0,
    )
    return outcomes, info


def estimate_dispersion(
    g: Graph,
    process: str = "sequential",
    *,
    origin: int = 0,
    reps: int | None = None,
    precision: Precision | None = None,
    seed=None,
    n_jobs: int = 1,
    batched="auto",
    **kwargs,
) -> DispersionEstimate:
    """Estimate ``E[τ]`` over independent realisations.

    Either pass a fixed repetition count (``reps=``, default 16) or a
    typed precision target (``precision=Precision(ci_rel=0.02)``): the
    adaptive mode runs *rounds* of repetitions — an initial batch, then
    top-ups sized from the width still missing — until the anytime
    confidence sequence around the running mean is narrower than the
    target or a budget (``max_reps``, ``max_seconds``) trips.  Because
    every round consumes the next children of the same parent
    ``SeedSequence``, an adaptive run that consumed ``N`` repetitions is
    bit-identical to ``reps=N`` — in every dispatch mode.  The rounds
    consumed and the achieved width come back on ``estimate.adaptive``.

    Parameters
    ----------
    reps:
        Fixed repetition count; mutually exclusive with ``precision``.
        ``None`` with no ``precision`` means 16.
    precision:
        A :class:`repro.core.anytime.Precision` stopping target; the
        confidence sequence is valid under optional stopping, so peeking
        after every round does not inflate the miscoverage.
    n_jobs:
        ``1`` (default) runs in-process; ``> 1`` exports the graph once
        into shared memory and fans contiguous repetition *shards* out
        over a process pool, each worker running the batched driver on
        its shard where profitable (:mod:`repro.experiments.fanout`);
        implicit families ship a ``(family, params)`` descriptor instead
        of a shared-memory segment.
        Worker counts above the round's repetition count are clamped
        (surplus workers could only receive empty shards; ``reps=1``
        therefore always runs in-process).  Seeds are spawned
        identically in all modes, so the samples are bit-identical to
        ``n_jobs=1``.  In adaptive rounds after the first, shards are
        additionally capped near ``0.5 s`` of observed per-rep cost, so
        stragglers shrink and drain over the pool.
    batched:
        ``"auto"`` (default) routes estimates through the lock-step
        drivers of :mod:`repro.core.batched` /
        :mod:`repro.core.batched_continuous` whenever the
        repetition count and kwargs make that profitable; ``True`` forces
        batching (raising if unsupported), ``False`` forces the serial
        reference path.  With ``n_jobs > 1`` the mode applies *per
        shard*: ``"auto"`` re-decides with each worker's repetition
        count, ``True`` forces every shard through the batched driver.
        Auto dispatch never changes the numbers — batched replay is
        bit-identical to the serial loop, and rules it cannot prove pure
        fall back to serial.  ``batched=True`` skips that purity guard
        and trusts the caller's rule to be stateless.
    kwargs:
        Driver options (``lazy=True``, ``rule=…``, ``record=True``, …),
        validated up front against the process's accepted surface
        (:func:`driver_kwargs`) — unknown keys raise ``TypeError``
        naming the options instead of reaching the driver.
        ``record=True`` surfaces per-repetition trajectories on the
        estimate (``faithful_r=True`` likewise the realised
        Uniform-IDLA schedules); both batch and fan out like every
        other mode — dispatch stays purely a performance decision.
        ``state_budget=`` (a :class:`repro.core.budget.StateBudget`, a
        spec string like ``"256M"`` / ``"500000p"``, or ``None``) caps
        the batched drivers' resident simulation state: repetitions run
        in cohorts — with mid-round particle chunking and stream-buffer
        shrink under byte budgets — instead of one flat ``reps × m``
        allocation.  Serial paths strip it (they are one-repetition-
        resident by construction); with ``n_jobs > 1`` the budget
        applies per worker and shards align to whole cohorts.  Budgets
        never change a sample — every cohort shape replays the serial
        streams bit for bit.
        ``backend=`` (a registered name like ``"numpy_strict"`` or an
        :class:`repro.backends.ArrayBackend` instance) selects the array
        backend the lock-step drivers execute on; unset, the
        ``REPRO_BACKEND`` environment variable and then the ``numpy``
        default apply.  Backends pickle by registry name, so the kwarg
        fans out to shard workers unchanged.  Serial paths strip it
        (they are the host-numpy reference oracles); exact-bitstream
        backends never change a sample, and non-bitstream backends are
        instead held to the statistical contract of
        :mod:`repro.backends.contract`.

    Examples
    --------
    >>> from repro.graphs import complete_graph
    >>> est = estimate_dispersion(complete_graph(32), "parallel", reps=4,
    ...                           seed=0, batched=False)
    >>> est.dispersion.n
    4
    >>> fast = estimate_dispersion(complete_graph(32), "parallel", reps=4,
    ...                            seed=0, batched=True)
    >>> bool(np.all(fast.samples == est.samples))
    True
    """
    if process not in PROCESS_DRIVERS:
        raise KeyError(
            f"unknown process {process!r}; available: {sorted(PROCESS_DRIVERS)}"
        )
    _validate_driver_kwargs(process, kwargs)
    n_jobs = check_integer("n_jobs", n_jobs)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if batched not in (True, False, "auto"):
        raise ValueError(f"batched must be True, False or 'auto', got {batched!r}")
    if batched is True:
        _validate_forced_batched(process, kwargs)
    if precision is not None and reps is not None:
        raise TypeError("pass either reps= or precision=, not both")
    parent = as_seed_sequence(
        seed if seed is not None else stable_seed(g.name, process, origin)
    )
    if precision is not None:
        outcomes, info = _adaptive_outcomes(
            g, process, origin, parent, precision, n_jobs, batched, kwargs
        )
    else:
        reps = 16 if reps is None else check_integer("reps", reps)
        if reps < 1:
            raise ValueError(f"reps must be >= 1, got {reps}")
        children = parent.spawn(reps)
        outcomes = _round_outcomes(
            g, process, origin, children, n_jobs, batched, kwargs
        )
        info = None
    disp = np.asarray([o[0] for o in outcomes])
    tot = np.asarray([o[1] for o in outcomes], dtype=np.int64)
    return DispersionEstimate(
        process=process,
        graph_name=g.name,
        n=g.n,
        origin=origin,
        dispersion=summarize(disp),
        total_steps=summarize(tot),
        samples=disp,
        total_samples=tot,
        trajectories=[o[2] for o in outcomes] if kwargs.get("record") else None,
        schedules=[o[3] for o in outcomes] if kwargs.get("faithful_r") else None,
        adaptive=info,
    )
