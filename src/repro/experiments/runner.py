"""Monte-Carlo execution: repeated dispersion runs with independent seeds.

The runner is the single entry point benches and examples use to estimate
``E[τ]``.  Repetitions receive independent child generators via
``SeedSequence.spawn`` (never a shared stream), so results are identical
whether repetitions run serially or across worker processes.  Worker-based
parallelism uses ``concurrent.futures.ProcessPoolExecutor`` (the guides'
recommended fan-out when mpi4py is unavailable); the default is serial
because individual runs are already NumPy-wide.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.continuous import continuous_sequential_idla, ctu_idla
from repro.core.parallel import parallel_idla
from repro.core.results import DispersionResult
from repro.core.sequential import sequential_idla
from repro.core.uniform import uniform_idla
from repro.experiments.stats import SummaryStats, summarize
from repro.graphs.csr import Graph
from repro.utils.rng import spawn_generators, stable_seed

__all__ = ["PROCESS_DRIVERS", "run_process", "DispersionEstimate", "estimate_dispersion"]

#: Name -> driver mapping used throughout benches and examples.
PROCESS_DRIVERS: dict[str, Callable[..., DispersionResult]] = {
    "sequential": sequential_idla,
    "parallel": parallel_idla,
    "uniform": uniform_idla,
    "ctu": ctu_idla,
    "c-sequential": continuous_sequential_idla,
}


def run_process(
    process: str, g: Graph, origin: int = 0, seed=None, **kwargs
) -> DispersionResult:
    """Run a named process once (thin dispatcher over the drivers)."""
    try:
        driver = PROCESS_DRIVERS[process]
    except KeyError:
        raise KeyError(
            f"unknown process {process!r}; available: {sorted(PROCESS_DRIVERS)}"
        ) from None
    return driver(g, origin, seed=seed, **kwargs)


@dataclass(frozen=True)
class DispersionEstimate:
    """Samples + summary for one (graph, process, origin) configuration."""

    process: str
    graph_name: str
    n: int
    origin: int
    dispersion: SummaryStats
    total_steps: SummaryStats
    samples: np.ndarray
    total_samples: np.ndarray

    def format(self) -> str:
        return (
            f"{self.process:>12} on {self.graph_name:<16} "
            f"E[τ] = {self.dispersion.format()}"
        )


def _one_run(args) -> tuple[float, int]:
    process, g, origin, seed, kwargs = args
    res = run_process(process, g, origin, seed=seed, **kwargs)
    return float(res.dispersion_time), int(res.total_steps)


def estimate_dispersion(
    g: Graph,
    process: str = "sequential",
    *,
    origin: int = 0,
    reps: int = 16,
    seed=None,
    n_jobs: int = 1,
    **kwargs,
) -> DispersionEstimate:
    """Estimate ``E[τ]`` over ``reps`` independent realisations.

    Parameters
    ----------
    n_jobs:
        ``1`` (default) runs serially; ``> 1`` fans repetitions out over a
        process pool.  Seeds are spawned identically in both modes.
    kwargs:
        Forwarded to the driver (``lazy=True``, ``rule=…``, …).

    Examples
    --------
    >>> from repro.graphs import complete_graph
    >>> est = estimate_dispersion(complete_graph(32), "parallel", reps=4, seed=0)
    >>> est.dispersion.n
    4
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    seeds = spawn_generators(
        seed if seed is not None else stable_seed(g.name, process, origin), reps
    )
    jobs = [(process, g, origin, s, kwargs) for s in seeds]
    if n_jobs > 1:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            outcomes = list(pool.map(_one_run, jobs))
    else:
        outcomes = [_one_run(j) for j in jobs]
    disp = np.asarray([o[0] for o in outcomes])
    tot = np.asarray([o[1] for o in outcomes], dtype=np.int64)
    return DispersionEstimate(
        process=process,
        graph_name=g.name,
        n=g.n,
        origin=origin,
        dispersion=summarize(disp),
        total_steps=summarize(tot),
        samples=disp,
        total_samples=tot,
    )
