"""Size sweeps over a graph family — the workhorse of every Table 1 bench.

A sweep builds one instance per requested size (snapped to the family's
realisable sizes), estimates dispersion for each process, and exposes the
scaling fits of :mod:`repro.experiments.fitting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.fitting import (
    ConstantFit,
    PowerLawFit,
    fit_constant,
    fit_power_law,
)
from repro.experiments.runner import DispersionEstimate, estimate_dispersion
from repro.theory.families import Family, get_family
from repro.theory.table1 import GrowthLaw
from repro.utils.rng import stable_seed

__all__ = ["SweepPoint", "SweepResult", "sweep_dispersion"]


@dataclass(frozen=True)
class SweepPoint:
    """One (size, process) measurement."""

    n: int
    process: str
    estimate: DispersionEstimate


@dataclass
class SweepResult:
    """All measurements of one family sweep, with fitting helpers."""

    family: str
    processes: tuple[str, ...]
    points: list[SweepPoint] = field(default_factory=list)

    def sizes(self) -> list[int]:
        """Distinct instance sizes, ascending."""
        return sorted({p.n for p in self.points})

    def means(self, process: str) -> tuple[np.ndarray, np.ndarray]:
        """(sizes, mean dispersion times) for one process."""
        pts = sorted(
            (p for p in self.points if p.process == process), key=lambda p: p.n
        )
        if not pts:
            raise KeyError(f"no points for process {process!r}")
        return (
            np.asarray([p.n for p in pts], dtype=np.float64),
            np.asarray([p.estimate.dispersion.mean for p in pts]),
        )

    def power_law(self, process: str) -> PowerLawFit:
        """Unconstrained log–log exponent fit."""
        ns, ys = self.means(process)
        return fit_power_law(ns, ys)

    def constant_fit(self, process: str, law: GrowthLaw) -> ConstantFit:
        """Leading-constant fit against a Table 1 law."""
        ns, ys = self.means(process)
        return fit_constant(ns, ys, law)

    def rows(self) -> list[dict]:
        """Flat row dicts for table rendering / JSON export."""
        out = []
        for p in sorted(self.points, key=lambda p: (p.n, p.process)):
            s = p.estimate.dispersion
            out.append(
                {
                    "family": self.family,
                    "n": p.n,
                    "process": p.process,
                    "mean": s.mean,
                    "sem": s.sem,
                    "median": s.median,
                    "reps": s.n,
                }
            )
        return out


def sweep_dispersion(
    family: str | Family,
    sizes,
    *,
    processes=("sequential", "parallel"),
    reps: int = 8,
    precision=None,
    seed=None,
    origin: str | int = "family",
    **kwargs,
) -> SweepResult:
    """Run a dispersion sweep over ``sizes`` for each process.

    Parameters
    ----------
    family:
        Family name (see :data:`repro.theory.FAMILIES`) or a ``Family``.
    precision:
        Optional :class:`repro.core.anytime.Precision` target; when set,
        ``reps`` is ignored and every (size, process) point runs
        adaptively until its own anytime CI meets the target — cheap
        points in the sweep stop early, expensive ones keep sampling,
        so the scaling fits get evenly-precise means instead of
        evenly-funded ones.
    origin:
        ``"family"`` uses the family's worst-case origin; an integer pins
        a specific vertex.
    seed:
        Base seed; every (size, process, rep) derives an independent
        stable child seed, so adding sizes later doesn't shift existing
        streams.  Both the graph seed and the estimate seed derive from
        the family's *snapped* size, so two requested sizes that realise
        to the same instance are the same point — and are measured once
        (duplicate snapped sizes are skipped) rather than entering the
        scaling fits twice with identical streams.
    kwargs:
        Forwarded to the process drivers.

    Examples
    --------
    >>> res = sweep_dispersion("complete", [32, 64], reps=2, seed=1)
    >>> len(res.points)
    4
    """
    fam = get_family(family) if isinstance(family, str) else family
    result = SweepResult(family=fam.name, processes=tuple(processes))
    base = seed if seed is not None else stable_seed("sweep", fam.name)
    seen: set[int] = set()
    for size in sizes:
        # Seed from the *snapped* size (fam.snap is idempotent, so building
        # at the snapped value realises exactly it): seeding from the raw
        # request would hand two sizes that snap together identical streams
        # under different labels, silently double-weighting that point in
        # power_law / constant_fit.
        n_snap = fam.snap(int(size))
        if n_snap in seen:
            continue
        seen.add(n_snap)
        g = fam.build(n_snap, seed=stable_seed(base, "graph", n_snap))
        org = fam.worst_origin(g) if origin == "family" else int(origin)
        for proc in processes:
            est = estimate_dispersion(
                g,
                proc,
                origin=org,
                reps=None if precision is not None else reps,
                precision=precision,
                seed=stable_seed(base, fam.name, g.n, proc),
                **kwargs,
            )
            result.points.append(SweepPoint(n=g.n, process=proc, estimate=est))
    return result
