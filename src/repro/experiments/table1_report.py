"""Assemble the paper's Table 1 programmatically.

One call produces, per family: the exact support quantities (hitting and
mixing time), Monte-Carlo dispersion means for both schedulers, and the
paper's predicted orders with the normalised measured constant — the same
content as the paper's summary table, regenerated from this library.  The
full scaling evidence (sweeps + fits) lives in the benchmark suite; this
report is the single-size snapshot used by the CLI and the mini example.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import estimate_dispersion
from repro.experiments.tables import render_table
from repro.markov.hitting import max_hitting_time
from repro.markov.mixing import mixing_time
from repro.theory.families import get_family
from repro.theory.table1 import TABLE1
from repro.utils.rng import stable_seed

__all__ = ["Table1Entry", "build_table1_report", "render_table1_report"]

#: Default instance size per family (snapped by each family as needed).
DEFAULT_SIZES = {
    "path": 64,
    "cycle": 64,
    "grid2d": 100,
    "torus3d": 125,
    "hypercube": 128,
    "binary_tree": 127,
    "complete": 256,
    "expander": 128,
}


@dataclass(frozen=True)
class Table1Entry:
    """One reproduced row of Table 1."""

    family: str
    n: int
    t_hit: float
    t_mix: int
    seq_mean: float
    par_mean: float
    seq_order: str
    par_order: str
    seq_normalised: float
    par_normalised: float


def build_table1_report(
    sizes: dict[str, int] | None = None,
    *,
    reps: int = 10,
    seed=0,
) -> list[Table1Entry]:
    """Measure every Table 1 family once and normalise by the paper's law.

    ``seq_normalised`` is ``E[τ_seq] / law(n)`` for the paper's predicted
    law — a size-free constant when the law is right (compare across runs
    or against the κ constants for path/clique).
    """
    sizes = dict(DEFAULT_SIZES if sizes is None else sizes)
    entries: list[Table1Entry] = []
    for fam_name, n_req in sizes.items():
        fam = get_family(fam_name)
        row = TABLE1[fam_name]
        g = fam.build(n_req, seed=stable_seed(seed, "graph", fam_name))
        origin = fam.worst_origin(g)
        seq = estimate_dispersion(
            g,
            "sequential",
            origin=origin,
            reps=reps,
            seed=stable_seed(seed, fam_name, "seq"),
        )
        par = estimate_dispersion(
            g,
            "parallel",
            origin=origin,
            reps=reps,
            seed=stable_seed(seed, fam_name, "par"),
        )
        entries.append(
            Table1Entry(
                family=fam_name,
                n=g.n,
                t_hit=max_hitting_time(g),
                t_mix=mixing_time(g, lazy=True),
                seq_mean=seq.dispersion.mean,
                par_mean=par.dispersion.mean,
                seq_order=row.seq.label,
                par_order=row.par.label,
                seq_normalised=seq.dispersion.mean / row.seq(g.n),
                par_normalised=par.dispersion.mean / row.par(g.n),
            )
        )
    return entries


def render_table1_report(entries) -> str:
    """ASCII rendering of :func:`build_table1_report`'s output."""
    rows = [
        [
            e.family,
            e.n,
            round(e.t_hit, 1),
            e.t_mix,
            round(e.seq_mean, 1),
            round(e.par_mean, 1),
            e.seq_order,
            round(e.seq_normalised, 3),
            round(e.par_normalised, 3),
        ]
        for e in entries
    ]
    return render_table(
        [
            "family",
            "n",
            "t_hit",
            "t_mix",
            "E[τ_seq]",
            "E[τ_par]",
            "paper order",
            "seq/order",
            "par/order",
        ],
        rows,
    )
