"""Summary statistics for Monte-Carlo samples.

Dispersion times are heavy-tailed on several families (Proposition 2.1
proves non-concentration), so alongside the mean ± CI we always report
median and extreme quantiles, and provide a bootstrap CI that does not
assume normality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["SummaryStats", "summarize", "bootstrap_ci", "empirical_quantile"]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    sem: float
    ci95_low: float
    ci95_high: float
    median: float
    q05: float
    q95: float
    min: float
    max: float

    @property
    def halfwidth(self) -> float:
        """Fixed-``n`` 95% half-width (1.96·SEM) — half of ci95_high−ci95_low.

        Only valid at a pre-committed sample size; estimates stopped by a
        :class:`repro.core.anytime.Precision` target report the (wider)
        anytime half-width on ``estimate.adaptive`` instead.
        """
        return 1.96 * self.sem

    def format(self, unit: str = "") -> str:
        """Compact human-readable rendering."""
        u = f" {unit}" if unit else ""
        return (
            f"{self.mean:.4g} ± {self.halfwidth:.2g}{u} "
            f"(median {self.median:.4g}, n={self.n})"
        )


def summarize(samples) -> SummaryStats:
    """Compute :class:`SummaryStats`; the CI is mean ± 1.96·SEM.

    >>> s = summarize([1.0, 2.0, 3.0])
    >>> s.mean, s.median
    (2.0, 2.0)
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    mean = float(x.mean())
    std = float(x.std(ddof=1)) if x.size > 1 else 0.0
    sem = std / np.sqrt(x.size) if x.size > 1 else 0.0
    return SummaryStats(
        n=int(x.size),
        mean=mean,
        std=std,
        sem=float(sem),
        ci95_low=mean - 1.96 * sem,
        ci95_high=mean + 1.96 * sem,
        median=float(np.median(x)),
        q05=float(np.quantile(x, 0.05)),
        q95=float(np.quantile(x, 0.95)),
        min=float(x.min()),
        max=float(x.max()),
    )


def bootstrap_ci(
    samples, stat=np.mean, *, level: float = 0.95, resamples: int = 2000, seed=None
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for an arbitrary statistic."""
    x = np.asarray(samples, dtype=np.float64)
    if x.size == 0:
        raise ValueError("samples must be non-empty")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0,1), got {level}")
    rng = as_generator(seed)
    idx = rng.integers(0, x.size, size=(resamples, x.size))
    if stat is np.mean:
        # vectorised fast path for the default statistic: one reduction
        # over the resample axis instead of a Python-level loop over
        # `resamples` rows.  Bit-identical to np.apply_along_axis — both
        # reduce each contiguous row with NumPy's pairwise summation
        # (pinned by tests/test_streaming_buffers.py).
        boots = x[idx].mean(axis=1)
    else:
        boots = np.apply_along_axis(stat, 1, x[idx])
    alpha = (1.0 - level) / 2.0
    return float(np.quantile(boots, alpha)), float(np.quantile(boots, 1.0 - alpha))


def empirical_quantile(samples, q: float) -> float:
    """Plain empirical quantile (wrapper kept for API symmetry)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0,1], got {q}")
    return float(np.quantile(np.asarray(samples, dtype=np.float64), q))
