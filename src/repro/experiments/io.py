"""JSON persistence for experiment outputs (NumPy-aware)."""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path

import numpy as np

__all__ = ["to_jsonable", "save_json", "load_json"]


def to_jsonable(obj):
    """Recursively convert dataclasses / NumPy values to JSON-safe types.

    The output is *strict* standard JSON: NumPy scalars (including
    ``np.bool_``) map to their Python equivalents, and non-finite floats
    (``nan``, ``±inf``) — which ``json.dumps`` would otherwise emit as the
    non-standard ``NaN`` / ``Infinity`` tokens — serialise as ``null``.
    That lossy mapping is the documented round-trip contract with
    :func:`load_json`: a reader sees ``None`` wherever a measurement was
    undefined.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        # tolist() may surface non-finite floats; route through the
        # scalar branches below.
        return to_jsonable(obj.tolist())
    if isinstance(obj, (bool, np.bool_)):  # before int: bool is an int subclass
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        return value if math.isfinite(value) else None
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, str) or obj is None:
        return obj
    raise TypeError(f"cannot serialise {type(obj).__name__}")


def save_json(path, obj) -> None:
    """Write ``obj`` (after :func:`to_jsonable`) to ``path``.

    ``allow_nan=False`` backstops the strict-JSON guarantee: if a
    non-finite float ever slipped past :func:`to_jsonable`, this raises
    instead of silently writing a file ``json.load`` peers would reject.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(
        json.dumps(to_jsonable(obj), indent=2, sort_keys=True, allow_nan=False)
    )


def load_json(path):
    """Read a JSON file written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
