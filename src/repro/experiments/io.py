"""JSON persistence for experiment outputs (NumPy-aware)."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

__all__ = ["to_jsonable", "save_json", "load_json"]


def to_jsonable(obj):
    """Recursively convert dataclasses / NumPy values to JSON-safe types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot serialise {type(obj).__name__}")


def save_json(path, obj) -> None:
    """Write ``obj`` (after :func:`to_jsonable`) to ``path``."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(to_jsonable(obj), indent=2, sort_keys=True))


def load_json(path):
    """Read a JSON file written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
